// Command craidsim runs one storage simulation: a workload (preset
// generator or trace file) replayed against one allocation strategy,
// reporting response times, hit ratios and distribution statistics.
//
// Usage:
//
//	craidsim -trace wdev -strategy CRAID-5 -pc 0.008
//	craidsim -trace cello99 -strategy RAID-5+ -budget 2
//	craidsim -trace wdev -shards 16 -workers 4 -lookahead 1 -maplog dirty.log
//	craidsim -file wdev.trace -format native -dataset-gb 4 -strategy CRAID-5 -pc 0.01
//	craidsim -file msr.csv -format msr -volume 2 -dataset-gb 4
//	craidsim -file msr.csv -format msr -pervolume -dataset-gb 4
//	craidsim -trace wdev -remote http://host:8440
//	craidsim -trace wdev -out result.json
//
// With -file, the named trace file replaces the preset generator:
// -format picks the parser (native, msr, blk), -dataset-gb sizes the
// simulated dataset, and for MSR multi-volume files -volume restricts
// the replay to one DiskNumber (default: all volumes interleaved).
// -pervolume splits an MSR file into its volumes and replays each
// against an independent simulation in parallel, one result row per
// volume (all volumes share one file handle via pread-style reads).
//
// -workers turns on the multi-queue monitor, -lookahead additionally
// overlaps its plan phase with the apply stage, -affinity pins each
// shard group to one long-lived worker, and -maplog attaches a
// dirty-translation log written through the batched log ring
// (-maplog-sync fsyncs the file after every flushed buffer); every
// monitor ratio and Stats field is identical at any
// -workers/-lookahead/-affinity setting, and the printed plan-ring and
// map-log lines report how the pipeline behaved.
//
// -remote runs the cell on a craidd experiment fabric (cmd/craidd)
// instead of in-process: the config travels by value, a fabric worker
// simulates it, and a warm fabric cache answers repeats without
// recomputing — the printed result is identical either way. -out
// writes the full JSON result to a file while the human-readable
// stats still print to stdout (use -json for JSON on stdout instead).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"craid/internal/disk"
	"craid/internal/experiments"
	"craid/internal/fabric"
	"craid/internal/metrics"
)

func main() {
	traceName := flag.String("trace", "wdev", "preset workload name")
	strategy := flag.String("strategy", "CRAID-5",
		"RAID-5 | RAID-5+ | CRAID-5 | CRAID-5+ | CRAID-5ssd | CRAID-5+ssd")
	pc := flag.Float64("pc", 0.008, "cache partition size, % per disk")
	policy := flag.String("policy", "WLRU", "monitor policy: LRU|LFUDA|GDSF|ARC|WLRU")
	budget := flag.Float64("budget", 0.5, "replayed GB (scales the workload)")
	bursty := flag.Bool("bursty", false, "bursty arrivals")
	shards := flag.Int("shards", 0, "mapping-index shards (0 = single tree)")
	workers := flag.Int("workers", 0,
		"multi-queue monitor workers (0 = sequential; ratios identical at any value)")
	lookahead := flag.Int("lookahead", 0,
		"plan batches this far ahead of the apply stage (0 = plan between batches; ratios identical at any value)")
	affinity := flag.Bool("affinity", false,
		"pin each shard group to one long-lived monitor worker (ratios identical either way)")
	maplog := flag.String("maplog", "",
		"write the dirty-translation log to this file through the batched log ring")
	maplogSync := flag.Bool("maplog-sync", false,
		"fsync the mapping log after every flushed ring buffer (durable flushes instead of the paper's NVRAM assumption)")
	file := flag.String("file", "", "replay this trace file instead of the preset")
	format := flag.String("format", "native", "trace file format: native|msr|blk")
	volume := flag.Int("volume", -1,
		"MSR only: replay one DiskNumber (negative = all volumes)")
	datasetGB := flag.Float64("dataset-gb", 4, "file traces: simulated dataset size in GB")
	perVolume := flag.Bool("pervolume", false,
		"MSR only: split the file into volumes and simulate each in parallel")
	faultSpec := flag.String("fault", "",
		"deterministic failure plan: events fail:D@T, transient:D@T-T2,rate,lat, rebuild:D@T,rate, crash@T, "+
			"expand@T,disks=N[,retain], storm:crash@T,n=K,every=D, and per-device sub-plans dev:D{...}; "+
			"compound plans compose, e.g. \"seed=7;fail:2@5s;rebuild:2@10s,rate=64;fail:12@8s;crash@20s\" "+
			"(second fault mid-rebuild + crash-restart) or \"seed=7;expand@5s,disks=5,retain;storm:crash@10s,n=3,every=5s\"")
	jsonOut := flag.Bool("json", false,
		"emit the full result (RunResult with replay, map-log and fault KPIs) as one JSON object")
	outFile := flag.String("out", "",
		"also write the full JSON result to this file (stdout keeps the human-readable stats)")
	remote := flag.String("remote", "",
		"run the cell on the craidd fabric at this URL instead of in-process")
	flag.Parse()

	cfg := experiments.RunConfig{
		Trace:          *traceName,
		Scale:          experiments.ScaleFor(*traceName, *budget),
		Strategy:       experiments.Strategy(*strategy),
		PCPct:          *pc,
		Policy:         *policy,
		Bursty:         *bursty,
		MapShards:      *shards,
		MonitorWorkers: *workers,
		PlanLookahead:  *lookahead,
		WorkerAffinity: *affinity,
		MappingLog:     *maplog,
		MapLogSync:     *maplogSync,
		FaultSpec:      *faultSpec,
		TrackLoad:      true,
		TrackSeq:       true,
	}
	if *file != "" {
		cfg.Trace = *file
		cfg.TraceFile = *file
		cfg.TraceFormat = *format
		if *volume >= 0 {
			cfg.TraceVolume = volume
		}
		cfg.DatasetBlocks = int64(*datasetGB * 1e9 / disk.BlockSize)
		cfg.Scale = experiments.ScaleForBlocks(cfg.DatasetBlocks)
	}

	if *remote != "" {
		if *perVolume {
			// -pervolume fans one shared file handle into sibling cells;
			// an open handle cannot travel to fabric workers.
			fmt.Fprintln(os.Stderr, "craidsim: -pervolume cells share a local file handle; they cannot run on -remote")
			os.Exit(1)
		}
		if *maplog != "" {
			fmt.Fprintln(os.Stderr, "craidsim: -maplog writes a local file; it cannot run on -remote")
			os.Exit(1)
		}
	}

	if *perVolume {
		if *file == "" {
			fmt.Fprintln(os.Stderr, "craidsim: -pervolume needs -file")
			os.Exit(1)
		}
		if *maplog != "" {
			fmt.Fprintln(os.Stderr, "craidsim: -maplog logs one simulation; it cannot be shared by -pervolume cells")
			os.Exit(1)
		}
		if *volume >= 0 {
			fmt.Fprintln(os.Stderr, "craidsim: -pervolume replays every volume; drop -volume or drop -pervolume")
			os.Exit(1)
		}
		results, err := experiments.RunMSRVolumes(*file, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "craidsim:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d volumes, strategy %s, P_C=%.4f%%/disk\n",
			*file, len(results), cfg.Strategy, cfg.PCPct)
		fmt.Printf("%6s %10s %10s %10s %8s %8s\n",
			"vol", "requests", "read(ms)", "write(ms)", "hitR", "hitW")
		for _, vr := range results {
			hitR, hitW := 0.0, 0.0
			if vr.CRAID != nil {
				hitR, hitW = vr.CRAID.HitRatio(disk.OpRead), vr.CRAID.HitRatio(disk.OpWrite)
			}
			fmt.Printf("%6d %10d %10.3f %10.3f %7.1f%% %7.1f%%\n",
				vr.Volume, vr.Requests,
				vr.ReadMean.Milliseconds(), vr.WriteMean.Milliseconds(),
				100*hitR, 100*hitW)
		}
		return
	}

	var res experiments.RunResult
	var err error
	if *remote != "" {
		res, err = fabric.NewClient(*remote).Run(cfg)
	} else {
		res, err = experiments.Run(cfg)
	}
	if err != nil {
		// Includes a dying mapping-log device (LogRing.Err surfaces at
		// each apply-step flush) and data lost beyond redundancy.
		fmt.Fprintln(os.Stderr, "craidsim:", err)
		os.Exit(1)
	}

	if *outFile != "" {
		if err := writeResultFile(*outFile, res); err != nil {
			fmt.Fprintln(os.Stderr, "craidsim:", err)
			os.Exit(1)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "craidsim:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("trace:        %s (scale %.5f)\n", cfg.Trace, cfg.Scale)
	fmt.Printf("strategy:     %s  P_C=%.4f%%/disk  policy=%s\n", cfg.Strategy, cfg.PCPct, cfg.Policy)
	fmt.Printf("requests:     %d\n", res.Requests)
	fmt.Printf("read:         mean %.3f ms, p99 %.3f ms\n",
		res.ReadMean.Milliseconds(), res.ReadP99.Milliseconds())
	fmt.Printf("write:        mean %.3f ms, p99 %.3f ms\n",
		res.WriteMean.Milliseconds(), res.WriteP99.Milliseconds())
	if res.CRAID != nil {
		s := res.CRAID
		fmt.Printf("hit ratio:    reads %.2f%%  writes %.2f%%\n",
			100*s.HitRatio(0), 100*s.HitRatio(1))
		fmt.Printf("evictions:    %d (%.2f%% dirty)  copy-ins: %d blocks  writebacks: %d blocks\n",
			s.Evictions, 100*ratioOf(s.DirtyEvictions, s.Evictions), s.CopyIns, s.Writebacks)
	}
	if res.MQ.Batches > 0 {
		mq := res.MQ
		fmt.Printf("multi-queue:  %d batches, %d planned (%d applied, %d replanned, %d mid-record)\n",
			mq.Batches, mq.Planned, mq.Applied, mq.Replanned, mq.SegReplans)
	}
	rp := res.Replay
	fmt.Printf("replay ring:  high water %d, reader stalls %d, replay stalls %d\n",
		rp.RingHighWater, rp.ReaderStalls, rp.ReplayStalls)
	if rp.PlannedBatches > 0 {
		fmt.Printf("plan ring:    %d batches planned ahead, high water %d, planner stalls %d (plan ready early), plan stalls %d (apply waited)\n",
			rp.PlannedBatches, rp.PlanHighWater, rp.PlannerStalls, rp.PlanStalls)
	}
	if res.MapLog.Records > 0 {
		ml := res.MapLog
		fmt.Printf("map log:      %d records (%d bytes), %d ring flushes, %d ring stalls, %d fsyncs\n",
			ml.Records, ml.Bytes, ml.Flushes, ml.Stalls, ml.Syncs)
	}
	if res.Fault != nil {
		f := res.Fault
		fmt.Printf("faults:       %d disk failures, %d transients (%d retries, %d permanent), %d lost extents\n",
			f.Failures, f.Transients, f.Retries, f.Permanent, f.LostExtents)
		fmt.Printf("degraded:     %d reads reconstructed (%d blocks, %d peer reads), %d writes degraded\n",
			f.DegradedReads, f.DegradedBlocks, f.PeerReads, f.DegradedWrites)
		if f.DegradedReads+f.DegradedWrites > 0 {
			fmt.Printf("deg latency:  read mean %.3f ms p99 %.3f ms, write mean %.3f ms p99 %.3f ms\n",
				res.DegReadMean.Milliseconds(), res.DegReadP99.Milliseconds(),
				res.DegWriteMean.Milliseconds(), res.DegWriteP99.Milliseconds())
		}
		if f.RebuildRows > 0 || f.RebuildLostRows > 0 {
			fmt.Printf("rebuild:      %d rows (%d blocks) in %.3f ms, %d rows lost, %d crash-restarted walks\n",
				f.RebuildRows, f.RebuildBlocks, res.RebuildDuration.Milliseconds(),
				f.RebuildLostRows, f.RebuildRestarts)
		}
		if f.Restarts > 0 {
			fmt.Printf("crash:        %d restarts, %d mappings recovered from the dirty log\n",
				f.Restarts, f.RecoveredMappings)
		}
		if f.Upgrades > 0 {
			fmt.Printf("expand:       %d upgrades, %d migrated, %d written back, %d invalidated, drain latency %.3f ms\n",
				f.Upgrades, f.ExpandMigrated, f.ExpandWriteback, f.ExpandInvalidated,
				f.UpgradeLatency().Milliseconds())
		}
	}
	fmt.Printf("load balance: mean per-second cv %.3f\n", metrics.Mean(res.CVs))
	fmt.Printf("sequential:   mean per-second fraction %.3f\n", metrics.Mean(res.SeqFracs))
	fmt.Printf("queues:       mean %.2f, p99 %d, max %d; concurrent devices mean %.1f max %d\n",
		res.QueueMean, res.QueueP99, res.QueueMax, res.ConcMean, res.ConcMax)
}

func ratioOf(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// writeResultFile writes the full result as indented JSON to path,
// atomically (temp + rename) so a crashed run never leaves a torn
// file for downstream tooling to choke on.
func writeResultFile(path string, res experiments.RunResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
